(* The repro_lint pass itself: one positive + one allow-suppressed
   fixture per rule (test/lint/*.ml), path scoping, the sorted-sink
   sanction heuristic, report stability, the lint_cli exit-code
   contract, and — last, because Hashtbl.randomize is process-global —
   an in-process proof that the D2 fix removed the hashtable-order
   dependence from byz run traces. *)

module Lint = Repro_lint.Lint
module Finding = Repro_lint.Finding
module Allowlist = Repro_lint.Allowlist
module E = Repro_renaming.Experiment
module Trace = Repro_obs.Trace

(* Fixtures and the CLI binary live next to the test executable in
   _build/default/{test/lint,bin}; resolve relative to the executable so
   cwd does not matter. *)
let exe_dir = Filename.dirname Sys.executable_name
let fixture name = Filename.concat (Filename.concat exe_dir "lint") name

let lint_cli =
  Filename.concat
    (Filename.concat (Filename.concat exe_dir "..") "bin")
    "lint_cli.exe"

let read path = In_channel.with_open_bin path In_channel.input_all

let contains haystack needle =
  let nn = String.length needle and nh = String.length haystack in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

let rules_of findings =
  List.sort_uniq String.compare
    (List.map (fun (f : Finding.t) -> f.Finding.rule) findings)

let check_fixture name ~expect_rule ~expect_count ~expect_suppressed =
  let findings, suppressed = Lint.lint_file (fixture name) in
  Alcotest.(check int)
    (name ^ ": finding count")
    expect_count (List.length findings);
  Alcotest.(check int) (name ^ ": suppressed count") expect_suppressed
    suppressed;
  if expect_count > 0 then
    Alcotest.(check (list string))
      (name ^ ": all findings are " ^ expect_rule)
      [ expect_rule ] (rules_of findings)

let test_d1 () =
  check_fixture "d1_pos.ml" ~expect_rule:"D1" ~expect_count:6
    ~expect_suppressed:0;
  check_fixture "d1_allow.ml" ~expect_rule:"D1" ~expect_count:0
    ~expect_suppressed:6

let test_d2 () =
  check_fixture "d2_pos.ml" ~expect_rule:"D2" ~expect_count:4
    ~expect_suppressed:0;
  (* Three sanctioned-by-sort bindings produce neither findings nor
     suppressions; the two annotated ones count as suppressed. *)
  check_fixture "d2_allow.ml" ~expect_rule:"D2" ~expect_count:0
    ~expect_suppressed:2

let test_d3 () =
  check_fixture "d3_pos.ml" ~expect_rule:"D3" ~expect_count:4
    ~expect_suppressed:0;
  check_fixture "d3_allow.ml" ~expect_rule:"D3" ~expect_count:0
    ~expect_suppressed:2

(* D4 is path-scoped: the same file is dirty under lib/core and clean
   under its real test/lint path. *)
let test_d4 () =
  let source = read (fixture "d4_pos.ml") in
  let findings, _ =
    Lint.lint_string ~filename:"lib/core/d4_pos.ml" source
  in
  Alcotest.(check int) "d4 under lib/core: 4 findings" 4
    (List.length findings);
  Alcotest.(check (list string)) "all D4" [ "D4" ] (rules_of findings);
  let findings, _ = Lint.lint_file (fixture "d4_pos.ml") in
  Alcotest.(check int) "d4 outside domain-shared dirs: clean" 0
    (List.length findings);
  let allow_src = read (fixture "d4_allow.ml") in
  let findings, suppressed =
    Lint.lint_string ~filename:"lib/sim/d4_allow.ml" allow_src
  in
  Alcotest.(check int) "d4_allow: no findings" 0 (List.length findings);
  Alcotest.(check int) "d4_allow: 3 suppressed" 3 suppressed

let test_d5 () =
  check_fixture "d5_pos.ml" ~expect_rule:"D5" ~expect_count:5
    ~expect_suppressed:0;
  check_fixture "d5_allow.ml" ~expect_rule:"D5" ~expect_count:0
    ~expect_suppressed:3

let test_d1_path_exemptions () =
  let src = "let now () = Unix.gettimeofday ()\n" in
  let dirty, _ = Lint.lint_string ~filename:"lib/sim/clock.ml" src in
  Alcotest.(check int) "gettimeofday flagged elsewhere" 1
    (List.length dirty);
  let clean, _ = Lint.lint_string ~filename:"lib/obs/trace.ml" src in
  Alcotest.(check int) "exempt in the opt-in timing path" 0
    (List.length clean);
  let rng_src = "let pick n = Random.int n\n" in
  let dirty, _ = Lint.lint_string ~filename:"lib/core/x.ml" rng_src in
  Alcotest.(check int) "Random.int flagged elsewhere" 1 (List.length dirty);
  let clean, _ = Lint.lint_string ~filename:"lib/util/rng.ml" rng_src in
  Alcotest.(check int) "exempt inside lib/util/rng.ml" 0 (List.length clean)

let test_parse_error_is_e0 () =
  let findings, _ = Lint.lint_string ~filename:"broken.ml" "let x = " in
  match findings with
  | [ f ] ->
      Alcotest.(check string) "rule E0" "E0" f.Finding.rule;
      Alcotest.(check string) "file" "broken.ml" f.Finding.file
  | l -> Alcotest.failf "expected exactly one E0 finding, got %d" (List.length l)

let test_enable_disable () =
  let only r = String.equal r "E0" || String.equal r "D1" in
  let findings, _ = Lint.lint_file ~enabled:only (fixture "d5_pos.ml") in
  Alcotest.(check int) "D5 fixture clean with only D1 enabled" 0
    (List.length findings);
  let findings, _ = Lint.lint_file ~enabled:only (fixture "d1_pos.ml") in
  Alcotest.(check int) "D1 still fires" 6 (List.length findings)

let test_allowlist_parsing () =
  Alcotest.(check (list string))
    "multiple ids, em-dash stops the reason"
    [ "D1"; "D4" ]
    (Allowlist.ids_of_line
       "(* lint: allow D1 D4 \xe2\x80\x94 reason mentioning D5 *)");
  Alcotest.(check (list string))
    "double-hyphen stops the reason too" [ "D2" ]
    (Allowlist.ids_of_line "(* lint: allow D2 -- order-insensitive D3 *)");
  Alcotest.(check (list string))
    "no marker, no ids" []
    (Allowlist.ids_of_line "let x = 1 (* allow D1 *)")

(* The report is a pure function of the inputs: same fixture dir, same
   bytes out — and the fixture dir is scanned in sorted order. *)
let test_report_stability () =
  let dir = Filename.concat exe_dir "lint" in
  let r1 = Lint.lint_files [ dir ] in
  let r2 = Lint.lint_files [ dir ] in
  Alcotest.(check string) "byte-identical JSON reports" (Lint.to_json r1)
    (Lint.to_json r2);
  Alcotest.(check bool) "json has the stable header" true
    (String.length (Lint.to_json r1) > 14
    && String.sub (Lint.to_json r1) 0 14 = "{\"tool\":\"repro");
  (* 4 positive fixtures fire (d4_pos is path-inert here). *)
  Alcotest.(check (list string))
    "per-rule counts over the fixture tree"
    [ "D1:6"; "D2:4"; "D3:4"; "D5:5" ]
    (List.map
       (fun (r, n) -> Printf.sprintf "%s:%d" r n)
       (Lint.findings_by_rule r1))

(* The real gate is `dune build @lint`; replicate it here best-effort so
   plain `dune runtest` also catches a dirty tree. The build dir mirrors
   the lib sources next to the test executable's parent. *)
let test_lib_tree_self_clean () =
  let rec locate dir depth =
    if depth > 6 then None
    else if
      Sys.file_exists
        (Filename.concat dir (Filename.concat "lib" "core/runner.ml"))
    then Some (Filename.concat dir "lib")
    else locate (Filename.dirname dir) (depth + 1)
  in
  match locate exe_dir 0 with
  | None -> ()  (* sandboxed layout without a lib mirror: @lint covers it *)
  | Some lib ->
      let report = Lint.lint_files [ lib ] in
      Alcotest.(check (list string))
        "lib tree is lint-clean" []
        (List.map
           (fun (f : Finding.t) ->
             Printf.sprintf "%s:%d [%s]" f.Finding.file f.Finding.line
               f.Finding.rule)
           report.Lint.findings);
      Alcotest.(check bool) "the intentional allows are counted" true
        (report.Lint.suppressed >= 7)

(* {2 lint_cli end to end} *)

let run_cli args =
  let tmp = Filename.temp_file "lint_cli" ".out" in
  let code = Sys.command (Printf.sprintf "%s %s > %s 2>&1" lint_cli args tmp) in
  let out = read tmp in
  Sys.remove tmp;
  (code, out)

let test_cli_exit_codes () =
  let dir = Filename.concat exe_dir "lint" in
  let code, out = run_cli dir in
  Alcotest.(check int) "dirty fixture tree: exit 1" 1 code;
  Alcotest.(check bool) "text report names a rule" true
    (String.length out > 0);
  let code, _ =
    run_cli
      (Printf.sprintf "--disable D1,D2,D3,D5 --disable S1,S2,N2,W1,W2 %s" dir)
  in
  Alcotest.(check int) "all firing rules disabled: exit 0" 0 code;
  let code, out = run_cli (Printf.sprintf "--format json %s" dir) in
  Alcotest.(check int) "json format: still exit 1" 1 code;
  Alcotest.(check bool) "json body" true
    (String.length out > 14 && String.sub out 0 14 = "{\"tool\":\"repro");
  let code, _ = run_cli "--list-rules" in
  Alcotest.(check int) "--list-rules: exit 0" 0 code;
  let code, _ = run_cli "--disable D9 ." in
  Alcotest.(check int) "unknown rule id: exit 2" 2 code;
  let code, _ = run_cli "/nonexistent/path" in
  Alcotest.(check int) "missing path: exit 2" 2 code

(* Injecting a violation into a lib/core-shaped tree must fail the CLI
   the same way `dune build @lint` would fail on the real tree. *)
let test_cli_injected_violation () =
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "lint_inject_%d" (Unix.getpid ()))
  in
  let core = Filename.concat (Filename.concat root "lib") "core" in
  let rec mkdir_p d =
    if not (Sys.file_exists d) then begin
      mkdir_p (Filename.dirname d);
      Sys.mkdir d 0o755
    end
  in
  mkdir_p core;
  let target = Filename.concat core "injected.ml" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists target then Sys.remove target;
      List.iter
        (fun d -> if Sys.file_exists d then Sys.rmdir d)
        [ core; Filename.concat root "lib"; root ])
    (fun () ->
      Out_channel.with_open_bin target (fun oc ->
          Out_channel.output_string oc (read (fixture "d4_pos.ml")));
      let code, out = run_cli (Printf.sprintf "--format json %s" root) in
      Alcotest.(check int) "injected D4 violation: exit 1" 1 code;
      let has needle =
        let nn = String.length needle and no = String.length out in
        let rec go i =
          i + nn <= no && (String.sub out i nn = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "report names D4" true (has "\"rule\":\"D4\"");
      Alcotest.(check bool) "report names the injected file" true
        (has "injected.ml"))

(* {2 The D2 fix, dynamically}

   Randomize hashtable hashing in-process (every Hashtbl.create from
   here on gets a fresh random seed, so two runs iterate their tables in
   different orders — the same perturbation OCAMLRUNPARAM=R applies at
   startup, which CI and test_cli exercise across processes) and prove
   byz run traces and assignments are still byte-identical. Before the
   plurality tie-break fix this is exactly the path that could flip. *)
let test_byz_trace_identical_under_randomized_hashing () =
  Hashtbl.randomize ();
  let go () =
    let t = Trace.create ~meta:[ ("fixture", `Str "lint_d2") ] () in
    let a =
      E.run_byz ~trace:t ~protocol:E.This_work_byz ~n:16 ~namespace:1024
        ~adversary:(E.Split_world_byz 2) ~pool_probability:0.7 ~seed:5 ()
    in
    (Trace.contents t, a.Repro_renaming.Runner.assignments)
  in
  let trace1, asg1 = go () in
  let trace2, asg2 = go () in
  Alcotest.(check string) "byte-identical traces" trace1 trace2;
  Alcotest.(check (list (pair int int))) "identical assignments" asg1 asg2

(* The delivery fast path's payload size-cache: a process-global cache
   would be D4 under lib/sim, which is why engine.ml keys a per-run
   array by dense sender slot instead. The fixture holds both shapes;
   only the global may fire. *)
let test_d4_size_cache () =
  let source = read (fixture "d4_size_cache.ml") in
  let findings, suppressed =
    Lint.lint_string ~filename:"lib/sim/d4_size_cache.ml" source
  in
  Alcotest.(check int) "exactly the global cache fires" 1
    (List.length findings);
  Alcotest.(check (list string)) "and it is D4" [ "D4" ] (rules_of findings);
  Alcotest.(check int) "nothing suppressed" 0 suppressed;
  let findings, _ = Lint.lint_file (fixture "d4_size_cache.ml") in
  Alcotest.(check int) "clean outside domain-shared dirs" 0
    (List.length findings)

(* The sharded engine's working state: a global domain pool or a global
   broadcast table would be D4 under lib/sim — which is why the pool,
   the per-shard scratch and the billing sums all live inside
   [Engine.run]. The fixture holds the rejected globals (one of them
   allow-annotated), plus the chosen per-run shapes. *)
let test_d4_shard_shapes () =
  let source = read (fixture "d4_shard.ml") in
  let findings, suppressed =
    Lint.lint_string ~filename:"lib/sim/d4_shard.ml" source
  in
  Alcotest.(check int) "the two globals fire" 2 (List.length findings);
  Alcotest.(check (list string)) "both D4" [ "D4" ] (rules_of findings);
  Alcotest.(check int) "annotated global suppressed" 1 suppressed;
  let findings, _ = Lint.lint_file (fixture "d4_shard.ml") in
  Alcotest.(check int) "clean outside domain-shared dirs" 0
    (List.length findings)

(* The verdict-emission arenas (lib/util/arena.ml): an arena is per-run
   state by contract — a module-level arena under a domain-shared
   library is D4 at the definition, and a parallel closure pushing
   into it is an S1 escape (plus S2: a [Vec.push] can grow the backing
   array, so two shards sharing one vector race on the resize). The
   fixture holds both rejected globals and the chosen per-run
   committee shape; only the globals and the [Pool.run] site fire. *)
let test_d4_arena_ownership () =
  let source = read (fixture "d4_arena.ml") in
  let findings, suppressed =
    Lint.lint_string ~filename:"lib/util/d4_arena.ml" source
  in
  Alcotest.(check int) "exactly the two global arenas fire" 2
    (List.length findings);
  Alcotest.(check (list string)) "both D4" [ "D4" ] (rules_of findings);
  Alcotest.(check int) "nothing suppressed" 0 suppressed;
  let findings, _ = Lint.lint_file (fixture "d4_arena.ml") in
  Alcotest.(check int) "clean outside domain-shared dirs" 0
    (List.length findings);
  (* project pass: the shard closure writing through the global arena *)
  let r = Lint.lint_project [ ("lib/util/d4_arena.ml", source) ] in
  let flow =
    List.filter
      (fun (f : Finding.t) -> f.Finding.rule <> "D4")
      r.Lint.p_findings
  in
  Alcotest.(check (list string))
    "global-arena push under Pool.run is S1 + S2" [ "S1"; "S2" ]
    (rules_of flow);
  Alcotest.(check bool) "S1 names the global vector" true
    (List.exists
       (fun (f : Finding.t) -> contains f.Finding.message "out_msgs")
       flow)

(* {2 Project-wide pass (lint v2): S/N/W rule families}

   [project] lints fixtures under a chosen logical path so the
   path-scoped rules (N1) can be exercised from test/lint. *)

let project files =
  Lint.lint_project
    (List.map (fun (logical, name) -> (logical, read (fixture name))) files)

let p_rules (r : Lint.project_report) = rules_of r.Lint.p_findings

(* The acceptance demonstration: each half of the S1 pair is clean under
   the per-file v1 pass, and only the summary-graph pass connects the
   Pool.run closure to the global it writes two hops away. *)
let test_s1_cross_file () =
  List.iter
    (fun name ->
      let findings, _ = Lint.lint_file (fixture name) in
      Alcotest.(check int) (name ^ ": v1 per-file pass sees nothing") 0
        (List.length findings))
    [ "s1_glob.ml"; "s1_pos.ml" ];
  let r =
    project [ ("s1_glob.ml", "s1_glob.ml"); ("s1_pos.ml", "s1_pos.ml") ]
  in
  Alcotest.(check (list string)) "v2 flags the escape as S1" [ "S1" ]
    (p_rules r);
  (match r.Lint.p_findings with
  | [ f ] ->
      Alcotest.(check string) "reported at the parallel call site"
        "s1_pos.ml" f.Finding.file;
      Alcotest.(check bool) "message names the global" true
        (contains f.Finding.message "S1_glob.counter")
  | l -> Alcotest.failf "expected exactly one S1 finding, got %d" (List.length l));
  let r =
    project [ ("s1_glob.ml", "s1_glob.ml"); ("s1_allow.ml", "s1_allow.ml") ]
  in
  Alcotest.(check int) "attribute and comment hatches both work" 0
    (List.length r.Lint.p_findings);
  Alcotest.(check int) "and both count as suppressed" 2 r.Lint.p_suppressed

let test_s2_shard_mutation () =
  let r = project [ ("s2_pos.ml", "s2_pos.ml") ] in
  Alcotest.(check (list string)) "shard body reaching Hashtbl.replace is S2"
    [ "S2" ] (p_rules r);
  Alcotest.(check int) "one finding" 1 (List.length r.Lint.p_findings);
  let r = project [ ("s2_allow.ml", "s2_allow.ml") ] in
  Alcotest.(check int) "comment hatch suppresses" 0
    (List.length r.Lint.p_findings);
  Alcotest.(check int) "suppression counted" 1 r.Lint.p_suppressed

let test_n1_path_scoping () =
  let src = read (fixture "n1_pos.ml") in
  let r = Lint.lint_project [ ("lib/net/n1_pos.ml", src) ] in
  Alcotest.(check (list string)) "raw Unix.read under lib/net is N1" [ "N1" ]
    (p_rules r);
  let r = Lint.lint_project [ ("lib/net/frame.ml", src) ] in
  Alcotest.(check int) "frame.ml owns the EINTR loops: exempt" 0
    (List.length r.Lint.p_findings);
  let r = project [ ("n1_pos.ml", "n1_pos.ml") ] in
  Alcotest.(check int) "clean outside lib/net" 0 (List.length r.Lint.p_findings);
  let allow = read (fixture "n1_allow.ml") in
  let r = Lint.lint_project [ ("lib/net/n1_allow.ml", allow) ] in
  Alcotest.(check int) "comment hatch suppresses" 0
    (List.length r.Lint.p_findings);
  Alcotest.(check int) "suppression counted" 1 r.Lint.p_suppressed

let test_n2_taint () =
  let r = project [ ("n2_pos.ml", "n2_pos.ml") ] in
  Alcotest.(check (list string)) "unchecked wire-sized allocations are N2"
    [ "N2" ] (p_rules r);
  Alcotest.(check int) "let-bound taint and inline read both fire" 2
    (List.length r.Lint.p_findings);
  let r = project [ ("n2_allow.ml", "n2_allow.ml") ] in
  Alcotest.(check int)
    "bound check clears taint; read_count never taints; hatch suppresses" 0
    (List.length r.Lint.p_findings);
  Alcotest.(check int) "only the hatch counts as suppressed" 1
    r.Lint.p_suppressed

let test_w1_literal_widths () =
  let r = project [ ("w1_pos.ml", "w1_pos.ml") ] in
  Alcotest.(check (list string)) "literal widths 62 and 64 are W1" [ "W1" ]
    (p_rules r);
  Alcotest.(check int) "both out-of-range literals fire" 2
    (List.length r.Lint.p_findings);
  let r = project [ ("w1_allow.ml", "w1_allow.ml") ] in
  Alcotest.(check int) "hatches suppress; width 31 is simply clean" 0
    (List.length r.Lint.p_findings);
  Alcotest.(check int) "two suppressions" 2 r.Lint.p_suppressed

let test_w2_computed_widths () =
  let r = project [ ("w2_pos.ml", "w2_pos.ml") ] in
  Alcotest.(check (list string)) "unguarded computed widths are W2" [ "W2" ]
    (p_rules r);
  Alcotest.(check int) "read and write site both hinted" 2
    (List.length r.Lint.p_findings);
  let r = project [ ("w2_allow.ml", "w2_allow.ml") ] in
  Alcotest.(check int) "dominating guard is clean; hatch suppresses" 0
    (List.length r.Lint.p_findings);
  Alcotest.(check int) "only the hatch counts as suppressed" 1
    r.Lint.p_suppressed

(* A floating [@@@lint.allow "ID"] relaxes the rule from the attribute to
   the end of the file — sites above it still fire. *)
let test_floating_allow () =
  let below =
    "[@@@lint.allow \"D5\"]\n\
     let f x = print_endline x\n\
     let g y = print_endline y\n"
  in
  let findings, suppressed = Lint.lint_string ~filename:"lib/core/x.ml" below in
  Alcotest.(check int) "whole file relaxed: no findings" 0
    (List.length findings);
  Alcotest.(check int) "both sites suppressed" 2 suppressed;
  let split =
    "let f x = print_endline x\n\
     [@@@lint.allow \"D5\"]\n\
     let g y = print_endline y\n"
  in
  let findings, suppressed = Lint.lint_string ~filename:"lib/core/x.ml" split in
  Alcotest.(check (list string)) "site above the attribute still fires"
    [ "D5" ] (rules_of findings);
  Alcotest.(check int) "site below is suppressed" 1 suppressed

(* Baseline ratcheting: a report blesses its own findings; only new
   findings escape. *)
let test_baseline_roundtrip () =
  let pairs =
    [
      ("s2_pos.ml", read (fixture "s2_pos.ml"));
      ("w1_pos.ml", read (fixture "w1_pos.ml"));
    ]
  in
  let r = Lint.lint_project pairs in
  Alcotest.(check int) "dirty without a baseline" 3
    (List.length r.Lint.p_findings);
  let bl = Lint.baseline_of_json (Lint.to_json_v2 r) in
  Alcotest.(check int) "baseline captures every finding" 3 (List.length bl);
  let r2 = Lint.lint_project ~baseline:bl pairs in
  Alcotest.(check int) "clean under its own baseline" 0
    (List.length r2.Lint.p_findings);
  Alcotest.(check int) "ratchet counted" 3 r2.Lint.p_baseline_suppressed;
  let r3 =
    Lint.lint_project ~baseline:bl
      (("n2_pos.ml", read (fixture "n2_pos.ml")) :: pairs)
  in
  Alcotest.(check (list string)) "a new finding still escapes the ratchet"
    [ "N2" ] (rules_of r3.Lint.p_findings)

(* Byte-stable lint-report/v2 over a fixed logical project, against the
   committed golden. Regenerate with test/gen_v2_golden (see its header)
   if the format changes deliberately. *)
let test_report_v2_golden () =
  let pairs =
    List.map
      (fun (logical, name) -> (logical, read (fixture name)))
      [
        ("lib/net/n1_pos.ml", "n1_pos.ml");
        ("s1_glob.ml", "s1_glob.ml");
        ("s1_pos.ml", "s1_pos.ml");
        ("s2_pos.ml", "s2_pos.ml");
        ("w1_pos.ml", "w1_pos.ml");
      ]
  in
  let json = Lint.to_json_v2 (Lint.lint_project pairs) in
  Alcotest.(check string) "deterministic" json
    (Lint.to_json_v2 (Lint.lint_project pairs));
  Alcotest.(check bool) "v2 schema marker" true
    (contains json "\"schema\":\"lint-report/v2\"");
  Alcotest.(check string) "matches the committed golden"
    (read (fixture "report_v2_golden.json"))
    json

(* {2 lint_cli: baseline flag and SARIF renderer} *)

let test_cli_baseline () =
  let dir = Filename.concat exe_dir "lint" in
  let code, json = run_cli (Printf.sprintf "--format json %s" dir) in
  Alcotest.(check int) "dirty tree: exit 1" 1 code;
  let bl_file = Filename.temp_file "lint_baseline" ".json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists bl_file then Sys.remove bl_file)
    (fun () ->
      Out_channel.with_open_bin bl_file (fun oc ->
          Out_channel.output_string oc json);
      let code, _ =
        run_cli (Printf.sprintf "--baseline %s %s" bl_file dir)
      in
      Alcotest.(check int) "clean under its own baseline: exit 0" 0 code);
  let code, _ = run_cli (Printf.sprintf "--baseline /nonexistent.json %s" dir) in
  Alcotest.(check int) "missing baseline file: exit 2" 2 code

let test_cli_sarif () =
  let dir = Filename.concat exe_dir "lint" in
  let code, out = run_cli (Printf.sprintf "--format sarif %s" dir) in
  Alcotest.(check int) "sarif on a dirty tree: still exit 1" 1 code;
  Alcotest.(check bool) "sarif envelope" true
    (contains out "\"version\":\"2.1.0\"");
  Alcotest.(check bool) "rules carried in the driver" true
    (contains out "\"id\":\"W1\"");
  Alcotest.(check bool) "errors for hard rules" true
    (contains out "\"level\":\"error\"");
  Alcotest.(check bool) "W2 demoted to note" true
    (contains out "\"level\":\"note\"");
  let _, out2 = run_cli (Printf.sprintf "--format sarif %s" dir) in
  Alcotest.(check string) "byte-stable" out out2

let suite =
  ( "lint",
    [
      Alcotest.test_case "D1 fixtures" `Quick test_d1;
      Alcotest.test_case "D2 fixtures" `Quick test_d2;
      Alcotest.test_case "D3 fixtures" `Quick test_d3;
      Alcotest.test_case "D4 fixtures + path scoping" `Quick test_d4;
      Alcotest.test_case "D4 size-cache route (engine fast path)" `Quick
        test_d4_size_cache;
      Alcotest.test_case "D4 shard-state routes (pool + broadcast table)"
        `Quick test_d4_shard_shapes;
      Alcotest.test_case "D4/S1 arena ownership" `Quick
        test_d4_arena_ownership;
      Alcotest.test_case "D5 fixtures" `Quick test_d5;
      Alcotest.test_case "D1 path exemptions" `Quick test_d1_path_exemptions;
      Alcotest.test_case "parse error is E0" `Quick test_parse_error_is_e0;
      Alcotest.test_case "enable/disable" `Quick test_enable_disable;
      Alcotest.test_case "allow-comment parsing" `Quick test_allowlist_parsing;
      Alcotest.test_case "report stability" `Quick test_report_stability;
      Alcotest.test_case "lib tree self-clean" `Quick
        test_lib_tree_self_clean;
      Alcotest.test_case "S1 cross-file escape (v1 misses, v2 catches)"
        `Quick test_s1_cross_file;
      Alcotest.test_case "S2 shard-body mutation" `Quick
        test_s2_shard_mutation;
      Alcotest.test_case "N1 raw-syscall path scoping" `Quick
        test_n1_path_scoping;
      Alcotest.test_case "N2 wire-sized allocation taint" `Quick
        test_n2_taint;
      Alcotest.test_case "W1 literal widths" `Quick test_w1_literal_widths;
      Alcotest.test_case "W2 computed widths" `Quick
        test_w2_computed_widths;
      Alcotest.test_case "floating allow scope" `Quick test_floating_allow;
      Alcotest.test_case "baseline round trip" `Quick test_baseline_roundtrip;
      Alcotest.test_case "lint-report/v2 golden" `Quick
        test_report_v2_golden;
      Alcotest.test_case "lint_cli exit codes" `Quick test_cli_exit_codes;
      Alcotest.test_case "lint_cli --baseline" `Quick test_cli_baseline;
      Alcotest.test_case "lint_cli SARIF output" `Quick test_cli_sarif;
      Alcotest.test_case "lint_cli injected violation" `Quick
        test_cli_injected_violation;
      Alcotest.test_case "byz trace identical under randomized hashing"
        `Quick test_byz_trace_identical_under_randomized_hashing;
    ] )
