(* Definition 1.1's general target namespace: renaming into [1, M] for
   any n <= M < N. The crash algorithm supports it by rooting the halving
   tree at [1, M]; strong renaming is the M = n special case. *)

module CR = Repro_renaming.Crash_renaming
module Runner = Repro_renaming.Runner
module Rng = Repro_util.Rng

let loose m = { CR.experiment_params with target = `Loose m }

let ids_of_n ?(seed = 0) n =
  Repro_renaming.Experiment.random_ids ~seed:(seed + 47) ~namespace:(60 * n) ~n

let test_loose_basic () =
  let n = 20 and m = 48 in
  let ids = ids_of_n n in
  let a = Runner.assess (CR.run ~params:(loose m) ~ids ~seed:1 ()) in
  Alcotest.(check bool) "unique" true a.unique;
  Alcotest.(check int) "all decide" n a.decided;
  List.iter
    (fun (_, v) ->
      Alcotest.(check bool) (Printf.sprintf "new id %d within [1,%d]" v m)
        true
        (1 <= v && v <= m))
    a.assignments

let test_loose_equals_strong_at_m_eq_n () =
  let n = 16 in
  let ids = ids_of_n n in
  let strong = Runner.assess (CR.run ~ids ~seed:2 ()) in
  let loose_n = Runner.assess (CR.run ~params:(loose n) ~ids ~seed:2 ()) in
  Alcotest.(check bool) "both correct" true (strong.correct && loose_n.correct);
  Alcotest.(check (list (pair int int))) "identical assignments"
    strong.assignments loose_n.assignments

let test_loose_rejects_small_target () =
  let ids = ids_of_n 8 in
  Alcotest.check_raises "m < n rejected"
    (Invalid_argument "Crash_renaming: loose target below n") (fun () ->
      ignore (CR.run ~params:(loose 4) ~ids ~seed:3 ()))

let qcheck_loose_correct_under_crashes =
  QCheck.Test.make ~name:"loose renaming: unique within [1,M] under crashes"
    ~count:60
    (QCheck.make
       ~print:(fun (n, slack, f, seed) ->
         Printf.sprintf "n=%d M=n+%d f=%d seed=%d" n slack f seed)
       QCheck.Gen.(
         let* n = int_range 2 24 in
         let* slack = int_range 0 (3 * n) in
         let* f = int_range 0 (n - 1) in
         let* seed = int_range 0 50_000 in
         return (n, slack, f, seed)))
    (fun (n, slack, f, seed) ->
      let m = n + slack in
      let ids = ids_of_n ~seed n in
      let crash =
        CR.Net.Crash.random ~rng:(Rng.of_seed (seed lxor 0xbeef)) ~f
          ~horizon:(9 * max 1 (Repro_util.Ilog.ceil_log2 m))
          ()
      in
      let a = Runner.assess (CR.run ~params:(loose m) ~ids ~crash ~seed ()) in
      a.unique
      && a.unfinished = 0
      && List.for_all (fun (_, v) -> 1 <= v && v <= m) a.assignments)

let suite =
  ( "loose_renaming",
    [
      Alcotest.test_case "basic loose target" `Quick test_loose_basic;
      Alcotest.test_case "loose(n) = strong" `Quick
        test_loose_equals_strong_at_m_eq_n;
      Alcotest.test_case "rejects M < n" `Quick test_loose_rejects_small_target;
      QCheck_alcotest.to_alcotest qcheck_loose_correct_under_crashes;
    ] )
