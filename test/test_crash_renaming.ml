(* End-to-end tests of Theorem 1.2's algorithm: correctness under no
   failures, random adaptive crashes (including mid-send), and the
   committee-killer strategy its competitive analysis is about. *)

module CR = Repro_renaming.Crash_renaming
module Runner = Repro_renaming.Runner
module Engine = Repro_sim.Engine
module Rng = Repro_util.Rng
module Ilog = Repro_util.Ilog

let ids_of_n ?(seed = 0) ?(namespace = 0) n =
  let namespace = if namespace = 0 then 50 * n else namespace in
  Repro_renaming.Experiment.random_ids ~seed:(seed + 17) ~namespace ~n

let test_no_failures_exact_permutation () =
  List.iter
    (fun n ->
      let ids = ids_of_n n in
      let res = CR.run ~ids ~seed:1 () in
      let a = Runner.assess res in
      Alcotest.(check bool) (Printf.sprintf "n=%d correct" n) true a.correct;
      Alcotest.(check int) (Printf.sprintf "n=%d all decide" n) n a.decided;
      let news = List.sort Int.compare (List.map snd a.assignments) in
      Alcotest.(check (list int))
        (Printf.sprintf "n=%d exact [1..n]" n)
        (List.init n (fun i -> i + 1))
        news)
    [ 1; 2; 3; 5; 8; 16; 33; 64 ]

let test_round_bound_deterministic () =
  List.iter
    (fun n ->
      let ids = ids_of_n n in
      let res = CR.run ~ids ~seed:2 () in
      let expected = if n = 1 then 0 else 9 * Ilog.ceil_log2 n in
      Alcotest.(check int)
        (Printf.sprintf "n=%d rounds = 9·⌈log n⌉" n)
        expected res.metrics.Repro_sim.Metrics.rounds)
    [ 1; 2; 7; 32; 50 ]

let test_survivors_unique_under_targeted_crashes () =
  let n = 16 in
  let ids = ids_of_n n in
  (* Kill three specific nodes at phase boundaries. *)
  let schedule = [ (0, ids.(0)); (4, ids.(5)); (10, ids.(15)) ] in
  let res = CR.run ~ids ~seed:3 ~crash:(CR.Net.Crash.targeted schedule) () in
  let a = Runner.assess res in
  Alcotest.(check bool) "correct" true a.correct;
  Alcotest.(check int) "three crashed" 3 a.crashed;
  Alcotest.(check int) "rest decided" (n - 3) a.decided

let test_whole_initial_committee_killed () =
  (* The committee killer with a large budget forces the re-election path
     (Lemma 2.4): survivors must still all decide uniquely. *)
  let n = 32 in
  let ids = ids_of_n n in
  let rng = Rng.of_seed 4 in
  let crash = CR.Net.Crash.committee_killer ~rng ~budget:(n - 1) () in
  let res = CR.run ~ids ~seed:5 ~crash () in
  let a = Runner.assess res in
  Alcotest.(check bool) "correct" true a.correct;
  Alcotest.(check bool) "someone survived and decided" true (a.decided >= 1);
  Alcotest.(check bool) "killer actually spent crashes" true (a.crash_cost > 0)

let test_mid_send_committee_killer () =
  let n = 24 in
  let ids = ids_of_n n in
  let rng = Rng.of_seed 6 in
  let crash = CR.Net.Crash.committee_killer ~rng ~budget:12 ~partial:true () in
  let res = CR.run ~ids ~seed:7 ~crash () in
  let a = Runner.assess res in
  Alcotest.(check bool) "correct under mid-send kills" true a.correct

let test_message_cap () =
  (* Theorem 1.2: never more than Θ(n² log n) messages, even with the
     committee saturated. Verified against the halving baseline, which is
     this algorithm with committee = everyone. *)
  let n = 32 in
  let ids = ids_of_n n in
  let res = Repro_renaming.Halving_renaming.run ~ids ~seed:8 () in
  let a = Runner.assess res in
  Alcotest.(check bool) "correct" true a.correct;
  Alcotest.(check bool)
    (Printf.sprintf "messages %d <= 9·n²·⌈log n⌉" a.messages)
    true
    (a.messages <= 9 * n * n * Ilog.ceil_log2 n)

let test_no_failure_messages_scale_quasilinearly () =
  (* With f = 0 the committee stays Θ(log n), so the committee algorithm
     must send a small fraction of what the same-structure all-to-all
     baseline sends at the same n. *)
  let n = 128 in
  let ids = ids_of_n n in
  let a = Runner.assess (CR.run ~ids ~seed:9 ()) in
  let b = Runner.assess (Repro_renaming.Halving_renaming.run ~ids ~seed:9 ()) in
  Alcotest.(check bool) "correct" true (a.correct && b.correct);
  Alcotest.(check bool)
    (Printf.sprintf "committee %d << all-to-all %d messages" a.messages
       b.messages)
    true
    (5 * a.messages < b.messages)

let test_paper_params_small_n_degenerate_to_all_committee () =
  (* With the paper's constant 256 the election probability saturates at
     1 for small n: everyone is a committee member and the run is still
     correct. *)
  let n = 12 in
  let ids = ids_of_n n in
  let res = CR.run ~params:CR.paper_params ~ids ~seed:10 () in
  let a = Runner.assess res in
  Alcotest.(check bool) "correct" true a.correct;
  Alcotest.(check int) "all decide" n a.decided

let test_message_sizes_are_logarithmic () =
  (* Every message must be O(log N) bits: check the per-message average
     of a run against a generous 4·log2 N + 16 bound. *)
  let n = 64 in
  let namespace = 100 * n in
  let ids = ids_of_n ~namespace n in
  let res = CR.run ~ids ~seed:11 () in
  let m = res.metrics in
  let avg =
    float_of_int m.Repro_sim.Metrics.honest_bits
    /. float_of_int (max 1 m.Repro_sim.Metrics.honest_messages)
  in
  Alcotest.(check bool)
    (Printf.sprintf "avg bits/message %.1f = O(log N)" avg)
    true
    (avg <= (4. *. float_of_int (Ilog.ceil_log2 namespace)) +. 16.)

let scenario_gen =
  QCheck.make
    ~print:(fun (n, f, kind, seed) ->
      Printf.sprintf "n=%d f=%d kind=%d seed=%d" n f kind seed)
    QCheck.Gen.(
      let* n = int_range 2 40 in
      let* f = int_range 0 (n - 1) in
      let* kind = int_range 0 3 in
      let* seed = int_range 0 100_000 in
      return (n, f, kind, seed))

let qcheck_always_correct =
  QCheck.Test.make
    ~name:"crash renaming: unique+strong under adaptive adversaries"
    ~count:150 scenario_gen (fun (n, f, kind, seed) ->
      let ids = ids_of_n ~seed n in
      let rng = Rng.of_seed (seed lxor 0x777) in
      let crash =
        match kind with
        | 0 ->
            CR.Net.Crash.random ~rng ~f
              ~horizon:(9 * max 1 (Ilog.ceil_log2 n))
              ()
        | 1 -> CR.Net.Crash.committee_killer ~rng ~budget:f ()
        | 2 -> CR.Net.Crash.committee_killer ~rng ~budget:f ~partial:true ()
        | _ -> CR.Net.Crash.patient_killer ~budget:f ()
      in
      let a = Runner.assess (CR.run ~ids ~seed ~crash ()) in
      a.correct
      && a.decided + a.crashed = n
      && List.for_all (fun (_, v) -> 1 <= v && v <= n) a.assignments)

let suite =
  ( "crash_renaming",
    [
      Alcotest.test_case "no failures: exact [1..n]" `Quick
        test_no_failures_exact_permutation;
      Alcotest.test_case "deterministic round bound" `Quick
        test_round_bound_deterministic;
      Alcotest.test_case "targeted crashes" `Quick
        test_survivors_unique_under_targeted_crashes;
      Alcotest.test_case "whole committee killed" `Quick
        test_whole_initial_committee_killed;
      Alcotest.test_case "mid-send committee killer" `Quick
        test_mid_send_committee_killer;
      Alcotest.test_case "message cap (all-to-all committee)" `Quick
        test_message_cap;
      Alcotest.test_case "quasilinear messages at f=0" `Quick
        test_no_failure_messages_scale_quasilinearly;
      Alcotest.test_case "paper constants degenerate correctly" `Quick
        test_paper_params_small_n_degenerate_to_all_committee;
      Alcotest.test_case "message sizes O(log N)" `Quick
        test_message_sizes_are_logarithmic;
      QCheck_alcotest.to_alcotest qcheck_always_correct;
    ] )
